(** Growable string arrays — the physical representation of variable-width
    (string) columns. Same contract as {!Varray} but for strings. *)

type t

val create : ?capacity:int -> unit -> t

val length : t -> int

val get : t -> int -> string

val set : t -> int -> string -> unit

val push : t -> string -> int
(** Append one string, return its index. *)

val truncate : t -> int -> unit

val force_set : t -> int -> string -> unit
(** [force_set p i s] sets slot [i], extending the pool with empty strings if
    needed — the idempotent "write at id" primitive WAL recovery uses. *)

val copy : t -> t

val to_array : t -> string array

val of_array : string array -> t

val iteri : (int -> string -> unit) -> t -> unit

val equal : t -> t -> bool
