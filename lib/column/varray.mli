(** Growable integer arrays — the physical representation of every fixed-width
    column in the kernel.

    A {!t} behaves like an [int array] that supports amortised O(1) [push] at
    the end, in-place mutation, and bulk moves.  The NULL convention of the
    kernel is the sentinel {!null} ([min_int]); varrays do not interpret it,
    they only store it. *)

type t

val null : int
(** Sentinel used by higher layers to represent SQL NULL in an int column. *)

val create : ?capacity:int -> unit -> t
(** Fresh empty varray. [capacity] pre-allocates (default 16). *)

val make : int -> int -> t
(** [make n x] is a varray of length [n] filled with [x]. *)

val of_array : int array -> t
(** Copy of an array as a varray. *)

val length : t -> int

val capacity : t -> int

val get : t -> int -> int
(** [get v i] is element [i]. Bounds-checked; raises [Invalid_argument]. *)

val set : t -> int -> int -> unit

val push : t -> int -> int
(** Append one element, return its index. *)

val push_n : t -> int -> int -> unit
(** [push_n v n x] appends [n] copies of [x]. *)

val pop : t -> int
(** Remove and return the last element. Raises [Invalid_argument] if empty. *)

val truncate : t -> int -> unit
(** [truncate v n] drops elements so that [length v = n]. [n] must not exceed
    the current length. *)

val ensure_length : t -> int -> int -> unit
(** [ensure_length v n x] extends [v] with copies of [x] until
    [length v >= n]. No-op when already long enough. *)

val blit_within : t -> src:int -> dst:int -> len:int -> unit
(** Overlapping-safe move of [len] elements from [src] to [dst]. *)

val fill : t -> pos:int -> len:int -> int -> unit
(** Set [len] elements starting at [pos] to a constant. *)

val copy : t -> t
(** Deep copy. *)

val sub : t -> pos:int -> len:int -> int array
(** Extract a slice as a fresh array. *)

val to_array : t -> int array

val iteri : (int -> int -> unit) -> t -> unit

val fold_left : ('a -> int -> 'a) -> 'a -> t -> 'a

val unsafe_data : t -> int array
(** The backing store, valid for indices [< length t]. Exposed so that hot
    loops (staircase join) can avoid a bounds check per access; the array
    identity is invalidated by any growth operation. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
