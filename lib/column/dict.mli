(** String dictionaries with stable integer codes.

    Used for the [qn] table (qualified names) and the [prop] table (unique
    attribute values) of the storage schema: every distinct string gets a
    dense id [0,1,2,...]; the id never changes once assigned, matching the
    paper's use of void-keyed side tables that positional joins navigate. *)

type t

val create : ?capacity:int -> unit -> t

val intern : t -> string -> int
(** Id of the string, inserting it if new. *)

val find_opt : t -> string -> int option
(** Id of the string if already interned. *)

val to_string : t -> int -> string
(** Inverse mapping. Raises [Invalid_argument] on an unknown id. *)

val mem : t -> string -> bool

val force : t -> int -> string -> unit
(** [force d id s] makes [s] interned at exactly [id] (extending the table
    with placeholders if needed) — idempotent, used by WAL recovery to replay
    dictionary appends deterministically. Raises [Invalid_argument] if [id]
    already holds a different string. *)

val cardinal : t -> int
(** Number of distinct interned strings. *)

val copy : t -> t

val iteri : (int -> string -> unit) -> t -> unit
(** Iterate in id order. *)

val equal : t -> t -> bool
