type value = I of int | S of string

type tail = TInt of Varray.t | TStr of Strpool.t

type t = {
  bname : string;
  base : int;
  tail : tail;
  mutable index : (value, int list) Hashtbl.t option;
      (* value -> oids in descending order (cons order); reversed on lookup *)
}

let create_int ?(seqbase = 0) bname =
  { bname; base = seqbase; tail = TInt (Varray.create ()); index = None }

let create_str ?(seqbase = 0) bname =
  { bname; base = seqbase; tail = TStr (Strpool.create ()); index = None }

let of_int_array ?(seqbase = 0) bname a =
  { bname; base = seqbase; tail = TInt (Varray.of_array a); index = None }

let name b = b.bname

let seqbase b = b.base

let count b =
  match b.tail with TInt v -> Varray.length v | TStr p -> Strpool.length p

let idx b oid =
  let i = oid - b.base in
  if i < 0 || i >= count b then
    invalid_arg (Printf.sprintf "Bat %s: oid %d out of range" b.bname oid);
  i

let get_int b oid =
  match b.tail with
  | TInt v -> Varray.get v (idx b oid)
  | TStr _ -> invalid_arg (Printf.sprintf "Bat %s: string tail" b.bname)

let get_str b oid =
  match b.tail with
  | TStr p -> Strpool.get p (idx b oid)
  | TInt _ -> invalid_arg (Printf.sprintf "Bat %s: int tail" b.bname)

let get b oid =
  match b.tail with
  | TInt v -> I (Varray.get v (idx b oid))
  | TStr p -> S (Strpool.get p (idx b oid))

let invalidate b = b.index <- None

let set_int b oid x =
  invalidate b;
  match b.tail with
  | TInt v -> Varray.set v (idx b oid) x
  | TStr _ -> invalid_arg (Printf.sprintf "Bat %s: string tail" b.bname)

let set_str b oid s =
  invalidate b;
  match b.tail with
  | TStr p -> Strpool.set p (idx b oid) s
  | TInt _ -> invalid_arg (Printf.sprintf "Bat %s: int tail" b.bname)

let set b oid = function
  | I x -> set_int b oid x
  | S s -> set_str b oid s

let append_int b x =
  invalidate b;
  match b.tail with
  | TInt v -> Varray.push v x + b.base
  | TStr _ -> invalid_arg (Printf.sprintf "Bat %s: string tail" b.bname)

let append_str b s =
  invalidate b;
  match b.tail with
  | TStr p -> Strpool.push p s + b.base
  | TInt _ -> invalid_arg (Printf.sprintf "Bat %s: int tail" b.bname)

let append b = function I x -> append_int b x | S s -> append_str b s

let positional_join outer inner oid = get inner (get_int outer oid)

let select_eq b v =
  let acc = ref [] in
  (match b.tail, v with
  | TInt c, I x ->
    for i = Varray.length c - 1 downto 0 do
      if Varray.get c i = x then acc := (i + b.base) :: !acc
    done
  | TStr p, S s ->
    for i = Strpool.length p - 1 downto 0 do
      if String.equal (Strpool.get p i) s then acc := (i + b.base) :: !acc
    done
  | TInt _, S _ | TStr _, I _ ->
    invalid_arg (Printf.sprintf "Bat %s: select type mismatch" b.bname));
  !acc

let select_range b ~lo ~hi =
  match b.tail with
  | TInt c ->
    let acc = ref [] in
    for i = Varray.length c - 1 downto 0 do
      let x = Varray.get c i in
      if x >= lo && x <= hi then acc := (i + b.base) :: !acc
    done;
    !acc
  | TStr _ -> invalid_arg (Printf.sprintf "Bat %s: string tail" b.bname)

let slice b ~lo ~hi =
  if hi < lo then [||]
  else begin
    let _ = idx b lo and _ = idx b hi in
    Array.init (hi - lo + 1) (fun i -> get b (lo + i))
  end

let iteri f b =
  match b.tail with
  | TInt c -> Varray.iteri (fun i x -> f (i + b.base) (I x)) c
  | TStr p -> Strpool.iteri (fun i s -> f (i + b.base) (S s)) p

let build_index b =
  let h = Hashtbl.create (max 16 (count b)) in
  iteri
    (fun oid v ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt h v) in
      Hashtbl.replace h v (oid :: prev))
    b;
  b.index <- Some h

let find_all b v =
  match b.index with
  | Some h -> List.rev (Option.value ~default:[] (Hashtbl.find_opt h v))
  | None -> select_eq b v

let find_first b v =
  match find_all b v with [] -> None | oid :: _ -> Some oid

let int_data b =
  match b.tail with
  | TInt c -> c
  | TStr _ -> invalid_arg (Printf.sprintf "Bat %s: int_data on string tail" b.bname)

let copy b =
  { bname = b.bname;
    base = b.base;
    tail =
      (match b.tail with
      | TInt c -> TInt (Varray.copy c)
      | TStr p -> TStr (Strpool.copy p));
    index = None }

let equal a b =
  a.base = b.base
  &&
  match a.tail, b.tail with
  | TInt x, TInt y -> Varray.equal x y
  | TStr x, TStr y -> Strpool.equal x y
  | TInt _, TStr _ | TStr _, TInt _ -> false

let pp_value ppf = function
  | I x when x = Varray.null -> Format.fprintf ppf "NULL"
  | I x -> Format.fprintf ppf "%d" x
  | S s -> Format.fprintf ppf "%S" s

let pp ppf b =
  Format.fprintf ppf "@[<v 2>BAT %s (void %d..%d):" b.bname b.base
    (b.base + count b - 1);
  iteri (fun oid v -> Format.fprintf ppf "@,%6d | %a" oid pp_value v) b;
  Format.fprintf ppf "@]"
