type t = { mutable data : int array; mutable len : int }

let null = min_int

let create ?(capacity = 16) () =
  let capacity = max capacity 1 in
  { data = Array.make capacity 0; len = 0 }

let make n x =
  if n < 0 then invalid_arg "Varray.make";
  { data = Array.make (max n 1) x; len = n }

let of_array a = { data = (if Array.length a = 0 then [| 0 |] else Array.copy a); len = Array.length a }

let length v = v.len

let capacity v = Array.length v.data

let check v i =
  if i < 0 || i >= v.len then
    invalid_arg (Printf.sprintf "Varray: index %d out of bounds [0,%d)" i v.len)

let get v i =
  check v i;
  Array.unsafe_get v.data i

let set v i x =
  check v i;
  Array.unsafe_set v.data i x

let grow v needed =
  let cap = Array.length v.data in
  if needed > cap then begin
    let cap' = ref (max cap 1) in
    while !cap' < needed do
      cap' := !cap' * 2
    done;
    let data' = Array.make !cap' 0 in
    Array.blit v.data 0 data' 0 v.len;
    v.data <- data'
  end

let push v x =
  grow v (v.len + 1);
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1;
  v.len - 1

let push_n v n x =
  if n < 0 then invalid_arg "Varray.push_n";
  grow v (v.len + n);
  Array.fill v.data v.len n x;
  v.len <- v.len + n

let pop v =
  if v.len = 0 then invalid_arg "Varray.pop: empty";
  v.len <- v.len - 1;
  Array.unsafe_get v.data v.len

let truncate v n =
  if n < 0 || n > v.len then invalid_arg "Varray.truncate";
  v.len <- n

let ensure_length v n x = if n > v.len then push_n v (n - v.len) x

let blit_within v ~src ~dst ~len =
  if len < 0 || src < 0 || dst < 0 || src + len > v.len || dst + len > v.len
  then invalid_arg "Varray.blit_within";
  Array.blit v.data src v.data dst len

let fill v ~pos ~len x =
  if len < 0 || pos < 0 || pos + len > v.len then invalid_arg "Varray.fill";
  Array.fill v.data pos len x

let copy v = { data = Array.copy v.data; len = v.len }

let sub v ~pos ~len =
  if len < 0 || pos < 0 || pos + len > v.len then invalid_arg "Varray.sub";
  Array.sub v.data pos len

let to_array v = Array.sub v.data 0 v.len

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold_left f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let unsafe_data v = v.data

let equal a b =
  a.len = b.len
  &&
  let rec loop i = i >= a.len || (a.data.(i) = b.data.(i) && loop (i + 1)) in
  loop 0

let pp ppf v =
  Format.fprintf ppf "[|";
  iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      if x = null then Format.fprintf ppf "NULL" else Format.fprintf ppf "%d" x)
    v;
  Format.fprintf ppf "|]"
