type t = { mutable data : string array; mutable len : int }

let create ?(capacity = 16) () =
  { data = Array.make (max capacity 1) ""; len = 0 }

let length p = p.len

let check p i =
  if i < 0 || i >= p.len then
    invalid_arg (Printf.sprintf "Strpool: index %d out of bounds [0,%d)" i p.len)

let get p i =
  check p i;
  Array.unsafe_get p.data i

let set p i s =
  check p i;
  Array.unsafe_set p.data i s

let grow p needed =
  let cap = Array.length p.data in
  if needed > cap then begin
    let cap' = ref (max cap 1) in
    while !cap' < needed do
      cap' := !cap' * 2
    done;
    let data' = Array.make !cap' "" in
    Array.blit p.data 0 data' 0 p.len;
    p.data <- data'
  end

let push p s =
  grow p (p.len + 1);
  Array.unsafe_set p.data p.len s;
  p.len <- p.len + 1;
  p.len - 1

let force_set p i s =
  if i < 0 then invalid_arg "Strpool.force_set";
  grow p (i + 1);
  if i >= p.len then begin
    Array.fill p.data p.len (i - p.len) "";
    p.len <- i + 1
  end;
  Array.unsafe_set p.data i s

let truncate p n =
  if n < 0 || n > p.len then invalid_arg "Strpool.truncate";
  p.len <- n

let copy p = { data = Array.copy p.data; len = p.len }

let to_array p = Array.sub p.data 0 p.len

let of_array a =
  { data = (if Array.length a = 0 then [| "" |] else Array.copy a);
    len = Array.length a }

let iteri f p =
  for i = 0 to p.len - 1 do
    f i (Array.unsafe_get p.data i)
  done

let equal a b =
  a.len = b.len
  &&
  let rec loop i =
    i >= a.len || (String.equal a.data.(i) b.data.(i) && loop (i + 1))
  in
  loop 0
