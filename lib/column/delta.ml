type entry = { pos : int; old_value : Bat.value; mutable new_value : Bat.value }

type t = {
  tname : string;
  mutable updates : entry list; (* reverse recording order *)
  by_pos : (int, entry) Hashtbl.t;
  mutable appends : Bat.value list; (* reverse order *)
  mutable nappends : int;
}

let create tname =
  { tname; updates = []; by_pos = Hashtbl.create 16; appends = []; nappends = 0 }

let table d = d.tname

let record_update d ~pos ~old_value v =
  match Hashtbl.find_opt d.by_pos pos with
  | Some e -> e.new_value <- v
  | None ->
    let e = { pos; old_value; new_value = v } in
    Hashtbl.add d.by_pos pos e;
    d.updates <- e :: d.updates

let record_append d v =
  d.appends <- v :: d.appends;
  d.nappends <- d.nappends + 1

let is_empty d = d.updates = [] && d.appends = []

let update_count d = List.length d.updates

let append_count d = d.nappends

let read d base oid =
  match Hashtbl.find_opt d.by_pos oid with
  | Some e -> e.new_value
  | None ->
    let n = Bat.count base + Bat.seqbase base in
    if oid >= n then begin
      let i = oid - n in
      if i >= d.nappends then
        invalid_arg
          (Printf.sprintf "Delta %s: oid %d beyond base+appends" d.tname oid);
      List.nth (List.rev d.appends) i
    end
    else Bat.get base oid

let apply d base =
  List.iter (fun e -> Bat.set base e.pos e.new_value) (List.rev d.updates);
  List.iter (fun v -> ignore (Bat.append base v)) (List.rev d.appends)

let undo d base =
  (* Truncation of appends is emulated by checking whether they were applied:
     recovery only calls undo on a base that already contains the appends. *)
  List.iter
    (fun e ->
      if e.pos < Bat.seqbase base + Bat.count base then
        Bat.set base e.pos e.old_value)
    d.updates

let iter_updates f d =
  List.iter
    (fun e -> f ~pos:e.pos ~old_value:e.old_value e.new_value)
    (List.rev d.updates)

let iter_appends f d = List.iter f (List.rev d.appends)
