(** Binary persistence: a little-endian codec plus checksummed frames.

    Frames are the durability unit of the WAL and checkpoint files: each
    frame is [magic, payload-length, adler32(payload), payload].  A torn
    write (crash mid-frame) is detected by a short read or a checksum
    mismatch, and {!read_frame} reports it as end-of-log, which is exactly
    the semantics recovery needs. *)

(** Append-only encoder. *)
module Enc : sig
  type t

  val create : unit -> t

  val int : t -> int -> unit
  (** Full 64-bit two's-complement integer (NULL sentinel survives). *)

  val string : t -> string -> unit

  val int_array : t -> int array -> unit

  val varray : t -> Varray.t -> unit

  val strpool : t -> Strpool.t -> unit

  val dict : t -> Dict.t -> unit

  val contents : t -> string
end

(** Sequential decoder over one frame payload. *)
module Dec : sig
  type t

  exception Corrupt of string
  (** Raised on any malformed payload. *)

  val of_string : string -> t

  val int : t -> int

  val string : t -> string

  val int_array : t -> int array

  val varray : t -> Varray.t

  val strpool : t -> Strpool.t

  val dict : t -> Dict.t

  val at_end : t -> bool
end

val adler32 : string -> int

val write_frame : out_channel -> string -> unit
(** Append one checksummed frame and flush.  Carries the
    ["persist.write_frame"] failpoint site: a [Torn_write] schedule emits a
    prefix of the frame and crashes, exercising exactly the torn-tail
    detection {!read_frame} implements. *)

val fsync_dir : string -> unit
(** Best-effort fsync of a directory — makes freshly created/renamed
    directory entries (new WAL, rotated log, renamed checkpoint) durable. *)

val read_frame : in_channel -> string option
(** Next frame payload, or [None] at end-of-file {e or} on a torn/corrupt
    frame (recovery treats both as the end of the valid log prefix). *)
