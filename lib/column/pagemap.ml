type t = {
  pbits : int;
  mutable log_to_phys : Varray.t;
  mutable phys_to_log : Varray.t;
  mutable shared : bool;
}

let m_splices =
  Obs.counter ~help:"pageOffset splice operations" "pagemap.splices"

let m_spliced_pages =
  Obs.counter ~help:"fresh pages inserted by splices" "pagemap.spliced_pages"

let m_shifted =
  Obs.histogram ~base:1.0 ~buckets:32
    ~help:"logical pages renumbered per splice (the paper's O(N/pagesize) step)"
    "pagemap.shifted_pages"

let create ~bits =
  if bits < 1 || bits > 30 then invalid_arg "Pagemap.create: bits out of [1,30]";
  { pbits = bits;
    log_to_phys = Varray.create ();
    phys_to_log = Varray.create ();
    shared = false }

let bits m = m.pbits

let page_size m = 1 lsl m.pbits

let npages m = Varray.length m.log_to_phys

let capacity m = npages m lsl m.pbits

(* Copy-on-write: [freeze] hands out an O(1) aliasing snapshot and marks both
   handles shared; the first structural mutation through either handle clones
   the backing varrays first, so frozen snapshots stay immutable forever. *)
let unshare m =
  if m.shared then begin
    m.log_to_phys <- Varray.copy m.log_to_phys;
    m.phys_to_log <- Varray.copy m.phys_to_log;
    m.shared <- false
  end

let freeze m =
  m.shared <- true;
  { pbits = m.pbits;
    log_to_phys = m.log_to_phys;
    phys_to_log = m.phys_to_log;
    shared = true }

let append_page m =
  unshare m;
  let phys = Varray.length m.phys_to_log in
  let logical = Varray.push m.log_to_phys phys in
  let _ = Varray.push m.phys_to_log logical in
  phys

let splice m ~at ~count =
  let n = npages m in
  if at < 0 || at > n then invalid_arg "Pagemap.splice: bad position";
  if count < 0 then invalid_arg "Pagemap.splice: bad count";
  if count = 0 then []
  else begin
    unshare m;
    Obs.inc m_splices;
    Obs.add m_spliced_pages count;
    Obs.observe m_shifted (float_of_int (n - at));
    (* Append fresh physical page ids, then rotate them into place. *)
    let fresh = List.init count (fun i -> n + i) in
    Varray.push_n m.log_to_phys count 0;
    Varray.blit_within m.log_to_phys ~src:at ~dst:(at + count) ~len:(n - at);
    List.iteri (fun i phys -> Varray.set m.log_to_phys (at + i) phys) fresh;
    (* Logical indices of every page at or after the splice point changed:
       this is the paper's "the offset of all pages after the insert point is
       incremented" — O(#pages), i.e. O(N / page_size). *)
    Varray.push_n m.phys_to_log count 0;
    for logical = at to n + count - 1 do
      Varray.set m.phys_to_log (Varray.get m.log_to_phys logical) logical
    done;
    fresh
  end

let phys_of_logical m l = Varray.get m.log_to_phys l

let logical_of_phys m p = Varray.get m.phys_to_log p

let pre_to_pos m pre =
  let mask = (1 lsl m.pbits) - 1 in
  (Varray.get m.log_to_phys (pre lsr m.pbits) lsl m.pbits) lor (pre land mask)

let pos_to_pre m pos =
  let mask = (1 lsl m.pbits) - 1 in
  (Varray.get m.phys_to_log (pos lsr m.pbits) lsl m.pbits) lor (pos land mask)

let unsafe_l2p m = Varray.unsafe_data m.log_to_phys

let unsafe_p2l m = Varray.unsafe_data m.phys_to_log

let is_identity m =
  let n = npages m in
  let rec loop i = i >= n || (Varray.get m.log_to_phys i = i && loop (i + 1)) in
  loop 0

let copy m =
  { pbits = m.pbits;
    log_to_phys = Varray.copy m.log_to_phys;
    phys_to_log = Varray.copy m.phys_to_log;
    shared = false }

let to_array m = Varray.to_array m.log_to_phys

let of_array ~bits a =
  let n = Array.length a in
  let seen = Array.make n false in
  Array.iter
    (fun p ->
      if p < 0 || p >= n || seen.(p) then
        invalid_arg "Pagemap.of_array: not a permutation";
      seen.(p) <- true)
    a;
  let m =
    { pbits = bits;
      log_to_phys = Varray.of_array a;
      phys_to_log = Varray.make n 0;
      shared = false }
  in
  Array.iteri (fun logical phys -> Varray.set m.phys_to_log phys logical) a;
  m

let equal a b = a.pbits = b.pbits && Varray.equal a.log_to_phys b.log_to_phys

let pp ppf m =
  Format.fprintf ppf "pageOffset(bits=%d) %a" m.pbits Varray.pp m.log_to_phys
