type t = { ids : (string, int) Hashtbl.t; strings : Strpool.t }

let create ?(capacity = 64) () =
  { ids = Hashtbl.create capacity; strings = Strpool.create ~capacity () }

let intern d s =
  match Hashtbl.find_opt d.ids s with
  | Some id -> id
  | None ->
    let id = Strpool.push d.strings s in
    Hashtbl.add d.ids s id;
    id

let find_opt d s = Hashtbl.find_opt d.ids s

let to_string d id =
  if id < 0 || id >= Strpool.length d.strings then
    invalid_arg (Printf.sprintf "Dict.to_string: unknown id %d" id);
  Strpool.get d.strings id

let mem d s = Hashtbl.mem d.ids s

let force d id s =
  if id < Strpool.length d.strings then begin
    let cur = Strpool.get d.strings id in
    if cur = "" && not (Hashtbl.mem d.ids s) then begin
      Strpool.force_set d.strings id s;
      Hashtbl.add d.ids s id
    end
    else if not (String.equal cur s) then
      invalid_arg
        (Printf.sprintf "Dict.force: id %d holds %S, cannot hold %S" id cur s)
  end
  else begin
    Strpool.force_set d.strings id s;
    Hashtbl.add d.ids s id
  end

let cardinal d = Strpool.length d.strings

let copy d = { ids = Hashtbl.copy d.ids; strings = Strpool.copy d.strings }

let iteri f d = Strpool.iteri f d.strings

let equal a b = Strpool.equal a.strings b.strings
