(** Logical-page order over physically-appended pages — the [pageOffset]
    table of the paper (Figure 6).

    Physical pages of the [pos/size/level] table are only ever {e appended};
    this permutation records where each physical page sits in {e logical}
    (document) order.  The pre/size/level "view" the query engine sees is
    the table read through this permutation.  In MonetDB the view is realised
    by remapping virtual-memory pages; here it is an O(1) arithmetic swizzle:

    {[ pos = log_to_phys.(pre lsr bits) lsl bits lor (pre land mask)
       pre = phys_to_log.(pos lsr bits) lsl bits lor (pos land mask) ]}

    Because [pre] is never materialised (it is a void column — a position in
    the view), splicing a freshly-appended page into the middle of the
    logical order renumbers every following node at zero physical cost: only
    the O(#pages) permutation entries after the splice point change. *)

type t

val create : bits:int -> t
(** Empty map with logical pages of [2^bits] tuples. [bits] must be in
    [1, 30]. *)

val bits : t -> int

val page_size : t -> int
(** Tuples per logical page, [2^bits]. *)

val npages : t -> int
(** Number of pages (physical = logical; the map is a permutation). *)

val capacity : t -> int
(** Total tuple slots, [npages * page_size]. *)

val append_page : t -> int
(** Allocate the next physical page and place it at the {e end} of logical
    order; returns its physical page id. *)

val splice : t -> at:int -> count:int -> int list
(** [splice m ~at ~count] allocates [count] fresh physical pages (appended
    physically) and inserts them into logical order starting at logical page
    index [at], shifting the logical index of every later page.  Returns the
    new physical page ids in logical order. *)

val phys_of_logical : t -> int -> int
(** Physical page id at a logical page index. *)

val logical_of_phys : t -> int -> int

val pre_to_pos : t -> int -> int
(** Swizzle a view position (pre) to a physical position (pos). O(1). *)

val pos_to_pre : t -> int -> int
(** Inverse swizzle. O(1). *)

val unsafe_l2p : t -> int array
(** Backing array of the logical→physical map, valid for indices
    [< npages]. For the storage layer's hot swizzle loops — MonetDB gets this
    lookup for free from the MMU; we at least skip the bounds check. The
    array identity is invalidated by {!append_page}/{!splice}. *)

val unsafe_p2l : t -> int array

val is_identity : t -> bool
(** True when logical and physical order coincide (freshly shredded store). *)

val copy : t -> t
(** Private copy — a transaction's private pageOffset table. *)

val freeze : t -> t
(** O(1) copy-on-write snapshot. The returned handle aliases the live
    permutation but is guaranteed never to observe a later mutation: the
    first {!append_page}/{!splice} through {e either} handle clones the
    backing arrays first. Used by MVCC version descriptors, which must pin
    the pageOffset as of one commit without paying an O(#pages) copy on
    every commit. *)

val to_array : t -> int array
(** The logical→physical permutation, for WAL records / checkpoints. *)

val of_array : bits:int -> int array -> t
(** Rebuild from a permutation. Raises [Invalid_argument] if the array is
    not a permutation of [0..n-1]. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
