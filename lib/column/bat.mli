(** Binary Association Tables — the MonetDB storage model.

    A BAT is a two-column table [head|tail] where the head is always a
    {e void} column: a densely ascending oid sequence [seqbase, seqbase+1,
    ...] that is never materialised (it takes zero space).  Because the head
    is void, looking a tuple up by oid is a positional array access — one
    CPU-ish operation — which is the property the paper's update mechanism is
    designed to preserve ("lookup of void values using positional
    algorithms").

    The tail is a typed column: integers (possibly the {!Varray.null}
    sentinel) or strings. *)

type value = I of int | S of string
(** A tail cell. Integer NULL is [I Varray.null]. *)

type t

(** {1 Construction} *)

val create_int : ?seqbase:int -> string -> t
(** Empty BAT with an integer tail. The string names the BAT (diagnostics). *)

val create_str : ?seqbase:int -> string -> t
(** Empty BAT with a string tail. *)

val of_int_array : ?seqbase:int -> string -> int array -> t

val name : t -> string

val seqbase : t -> int
(** First oid of the void head. *)

val count : t -> int
(** Number of tuples. Head oids are [seqbase .. seqbase + count - 1]. *)

(** {1 Positional access (void head)} *)

val get_int : t -> int -> int
(** [get_int b oid] is the integer tail value at head oid [oid].
    Raises [Invalid_argument] on a non-int tail or out-of-range oid. *)

val get_str : t -> int -> string

val get : t -> int -> value

val set_int : t -> int -> int -> unit

val set_str : t -> int -> string -> unit

val set : t -> int -> value -> unit

val append_int : t -> int -> int
(** Append a tuple; returns its oid. *)

val append_str : t -> string -> int

val append : t -> value -> int

(** {1 Relational operators} *)

val positional_join : t -> t -> int -> value
(** [positional_join outer inner oid]: MonetDB's join over a void-headed
    inner — fetch [outer]'s tail at [oid] (must be an int: an oid into
    [inner]) then [inner]'s tail positionally.  O(1). *)

val select_eq : t -> value -> int list
(** Oids whose tail equals the value (scan). Ascending oid order. *)

val select_range : t -> lo:int -> hi:int -> int list
(** Oids whose integer tail lies in [lo, hi] inclusive (scan). *)

val slice : t -> lo:int -> hi:int -> value array
(** Tail values for head oids in [lo, hi] inclusive — positional, O(n). *)

val iteri : (int -> value -> unit) -> t -> unit
(** Iterate (oid, tail) in head order. *)

(** {1 Hash index} *)

val build_index : t -> unit
(** Build (or rebuild) a hash index on the tail, accelerating
    {!find_all}/{!find_first}. The index is invalidated (and dropped) by any
    subsequent mutation. *)

val find_all : t -> value -> int list
(** All oids with the given tail value; uses the hash index if present,
    otherwise scans. Ascending order. *)

val find_first : t -> value -> int option

(** {1 Misc} *)

val int_data : t -> Varray.t
(** Underlying int varray (int tails only) for hot loops. *)

val copy : t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
