open Column

type t = {
  pre : Varray.t; (* materialised: always equals the index, but must be
                     physically rewritten on every shift — the O(N) cost *)
  size : Varray.t;
  level : Varray.t;
  kind : Varray.t;
  name : Varray.t;
  qn : Dict.t;
  props : Dict.t;
  text_pool : Strpool.t;
  comment_pool : Strpool.t;
  pi_target_pool : Strpool.t;
  pi_data_pool : Strpool.t;
  attr_owner : Varray.t; (* sorted by owner pre *)
  attr_qn : Varray.t;
  attr_prop : Varray.t;
  mutable shifted : int;
}

let of_dom d =
  let items = Core.Shred.sequence d in
  let n = Array.length items in
  let t =
    { pre = Varray.create ~capacity:n ();
      size = Varray.create ~capacity:n ();
      level = Varray.create ~capacity:n ();
      kind = Varray.create ~capacity:n ();
      name = Varray.create ~capacity:n ();
      qn = Dict.create ();
      props = Dict.create ();
      text_pool = Strpool.create ();
      comment_pool = Strpool.create ();
      pi_target_pool = Strpool.create ();
      pi_data_pool = Strpool.create ();
      attr_owner = Varray.create ();
      attr_qn = Varray.create ();
      attr_prop = Varray.create ();
      shifted = 0 }
  in
  Array.iteri
    (fun pre { Core.Shred.size; level; payload } ->
      let kind, name =
        match payload with
        | Core.Shred.El (q, attrs) ->
          let qid = Dict.intern t.qn (Xml.Qname.to_string q) in
          List.iter
            (fun (aq, av) ->
              let _ = Varray.push t.attr_owner pre in
              let _ = Varray.push t.attr_qn (Dict.intern t.qn (Xml.Qname.to_string aq)) in
              let _ = Varray.push t.attr_prop (Dict.intern t.props av) in
              ())
            attrs;
          (Core.Kind.Element, qid)
        | Core.Shred.Tx s -> (Core.Kind.Text, Strpool.push t.text_pool s)
        | Core.Shred.Cm s -> (Core.Kind.Comment, Strpool.push t.comment_pool s)
        | Core.Shred.Pr (target, data) ->
          let r = Strpool.push t.pi_target_pool target in
          let _ = Strpool.push t.pi_data_pool data in
          (Core.Kind.Pi, r)
      in
      let _ = Varray.push t.pre pre in
      let _ = Varray.push t.size size in
      let _ = Varray.push t.level level in
      let _ = Varray.push t.kind (Core.Kind.to_int kind) in
      let _ = Varray.push t.name name in
      ())
    items;
  t

(* ------------------------------------------------------------- signature -- *)

let extent t = Varray.length t.size

let node_count = extent

let is_used _ _ = true

let next_used _ pre = pre

let prev_used _ pre = pre

let size t pre = Varray.get t.size pre

let level t pre = Varray.get t.level pre

let kind t pre = Core.Kind.of_int (Varray.get t.kind pre)

let name_id t pre = Varray.get t.name pre

let qname t pre =
  match kind t pre with
  | Core.Kind.Element -> Xml.Qname.of_string (Dict.to_string t.qn (name_id t pre))
  | _ -> invalid_arg "Schema_naive.qname: not an element"

let content t pre =
  let r = name_id t pre in
  match kind t pre with
  | Core.Kind.Text -> Strpool.get t.text_pool r
  | Core.Kind.Comment -> Strpool.get t.comment_pool r
  | Core.Kind.Pi -> Strpool.get t.pi_data_pool r
  | Core.Kind.Element -> invalid_arg "Schema_naive.content: element node"

let pi_target t pre =
  match kind t pre with
  | Core.Kind.Pi -> Strpool.get t.pi_target_pool (name_id t pre)
  | _ -> invalid_arg "Schema_naive.pi_target: not a PI"

let qn_id t q = Dict.find_opt t.qn (Xml.Qname.to_string q)

let attr_range t pre =
  let n = Varray.length t.attr_owner in
  let rec lower lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if Varray.get t.attr_owner mid < pre then lower (mid + 1) hi else lower lo mid
  in
  let start = lower 0 n in
  let stop = ref start in
  while !stop < n && Varray.get t.attr_owner !stop = pre do
    incr stop
  done;
  (start, !stop)

let attributes t pre =
  let start, stop = attr_range t pre in
  List.init (stop - start) (fun i ->
      let row = start + i in
      ( Xml.Qname.of_string (Dict.to_string t.qn (Varray.get t.attr_qn row)),
        Dict.to_string t.props (Varray.get t.attr_prop row) ))

let attribute t pre q =
  match qn_id t q with
  | None -> None
  | Some qid ->
    let start, stop = attr_range t pre in
    let rec scan row =
      if row >= stop then None
      else if Varray.get t.attr_qn row = qid then
        Some (Dict.to_string t.props (Varray.get t.attr_prop row))
      else scan (row + 1)
    in
    scan start

let root_pre _ = 0

let last_shifted t = t.shifted

(* --------------------------------------------------------------- updates -- *)

(* Open an m-slot hole at [at] in every node column: O(N - at) moves, plus a
   full rewrite of the materialised pre values after the hole. *)
let open_hole t ~at ~m =
  let n = extent t in
  let cols = [ t.pre; t.size; t.level; t.kind; t.name ] in
  List.iter
    (fun c ->
      Varray.push_n c m 0;
      if n - at > 0 then Varray.blit_within c ~src:at ~dst:(at + m) ~len:(n - at))
    cols;
  for i = at to n + m - 1 do
    Varray.set t.pre i i
  done;
  t.shifted <- t.shifted + (n - at)

let close_hole t ~at ~m =
  let n = extent t in
  let cols = [ t.pre; t.size; t.level; t.kind; t.name ] in
  List.iter
    (fun c ->
      if n - at - m > 0 then Varray.blit_within c ~src:(at + m) ~dst:at ~len:(n - at - m);
      Varray.truncate c (n - m))
    cols;
  for i = at to n - m - 1 do
    Varray.set t.pre i i
  done;
  t.shifted <- t.shifted + (n - at - m)

(* Rewrite attribute owner references at or past a boundary (B-tree key
   maintenance in a real RDBMS). *)
let shift_attr_owners t ~from ~by =
  Varray.iteri
    (fun row owner ->
      if owner >= from then begin
        Varray.set t.attr_owner row (owner + by);
        t.shifted <- t.shifted + 1
      end)
    t.attr_owner

(* Ancestors of a position: scan back over containment. *)
let bump_ancestor_sizes t ~pre ~by =
  let rec up j lvl =
    if j >= 0 && lvl > 0 then
      if Varray.get t.level j = lvl - 1 then begin
        Varray.set t.size j (Varray.get t.size j + by);
        up (j - 1) (lvl - 1)
      end
      else up (j - 1) lvl
  in
  let lvl = Varray.get t.level pre in
  up (pre - 1) lvl

let insert_attr_rows t rows =
  (* keep owner-sorted order: insert each row at its position *)
  List.iter
    (fun (owner, qn, prop) ->
      let at, _ = attr_range t (owner + 1) in
      let n = Varray.length t.attr_owner in
      let cols = [ t.attr_owner; t.attr_qn; t.attr_prop ] in
      List.iter
        (fun c ->
          Varray.push_n c 1 0;
          if n - at > 0 then Varray.blit_within c ~src:at ~dst:(at + 1) ~len:(n - at))
        cols;
      Varray.set t.attr_owner at owner;
      Varray.set t.attr_qn at qn;
      Varray.set t.attr_prop at prop;
      t.shifted <- t.shifted + (n - at))
    rows

let insert t ~parent_pre ~at_pre nodes =
  if nodes = [] then ()
  else begin
    t.shifted <- 0;
    let items = Core.Shred.sequence_forest nodes in
    let m = Array.length items in
    let plevel = Varray.get t.level parent_pre in
    (* ancestor sizes first (positions still valid), then the shift *)
    Varray.set t.size parent_pre (Varray.get t.size parent_pre + m);
    bump_ancestor_sizes t ~pre:parent_pre ~by:m;
    open_hole t ~at:at_pre ~m;
    shift_attr_owners t ~from:at_pre ~by:m;
    let attr_rows = ref [] in
    Array.iteri
      (fun i { Core.Shred.size; level; payload } ->
        let pre = at_pre + i in
        let kind, name =
          match payload with
          | Core.Shred.El (q, attrs) ->
            let qid = Dict.intern t.qn (Xml.Qname.to_string q) in
            List.iter
              (fun (aq, av) ->
                attr_rows :=
                  ( pre,
                    Dict.intern t.qn (Xml.Qname.to_string aq),
                    Dict.intern t.props av )
                  :: !attr_rows)
              attrs;
            (Core.Kind.Element, qid)
          | Core.Shred.Tx s -> (Core.Kind.Text, Strpool.push t.text_pool s)
          | Core.Shred.Cm s -> (Core.Kind.Comment, Strpool.push t.comment_pool s)
          | Core.Shred.Pr (target, data) ->
            let r = Strpool.push t.pi_target_pool target in
            let _ = Strpool.push t.pi_data_pool data in
            (Core.Kind.Pi, r)
        in
        Varray.set t.size (at_pre + i) size;
        Varray.set t.level (at_pre + i) (plevel + 1 + level);
        Varray.set t.kind (at_pre + i) (Core.Kind.to_int kind);
        Varray.set t.name (at_pre + i) name)
      items;
    insert_attr_rows t (List.rev !attr_rows)
  end

let delete t ~pre =
  if Varray.get t.level pre = 0 then invalid_arg "Schema_naive.delete: root";
  t.shifted <- 0;
  let m = 1 + Varray.get t.size pre in
  bump_ancestor_sizes t ~pre ~by:(-m);
  (* drop attr rows of the removed range, shift the rest *)
  let lo, _ = attr_range t pre in
  let hi, _ = attr_range t (pre + m) in
  let dropped = hi - lo in
  if dropped > 0 then begin
    let n = Varray.length t.attr_owner in
    let cols = [ t.attr_owner; t.attr_qn; t.attr_prop ] in
    List.iter
      (fun c ->
        if n - hi > 0 then Varray.blit_within c ~src:hi ~dst:lo ~len:(n - hi);
        Varray.truncate c (n - dropped))
      cols
  end;
  shift_attr_owners t ~from:pre ~by:(-m);
  close_hole t ~at:pre ~m
