(** The strawman the paper argues against (§2.2): pre/size/level storage with
    a {e materialised} pre column and no logical pages.

    A structural insert must physically move every tuple after the insert
    point, rewrite their stored pre values, and rewrite the attribute table's
    owner references — O(N) work per update.  (In MonetDB this layout is not
    even expressible, because a void column can never be modified; this
    module plays the role of "pre stored in an ordinary RDBMS column".)

    Queries work identically to {!Core.Schema_ro} — the point of the baseline
    is the update cost, which the shift-cost bench measures. *)

type t

val of_dom : Xml.Dom.t -> t

include Core.Storage_intf.S with type t := t

val insert : t -> parent_pre:int -> at_pre:int -> Xml.Dom.node list -> unit
(** Insert a forest so that its first node lands at position [at_pre]
    (which must lie inside the parent's region). O(document). *)

val delete : t -> pre:int -> unit
(** Remove the subtree, closing the gap. O(document). *)

val last_shifted : t -> int
(** Tuples physically moved (plus attribute references rewritten) by the most
    recent structural update — the measured O(N) cost. *)
