type t = int list

let root = [ 1 ]

let child l k =
  if k < 1 then invalid_arg "Ordpath.child: 1-based";
  l @ [ (2 * k) - 1 ]

let components l = l

let length = List.length

let level l = List.length (List.filter (fun c -> c land 1 = 1) l) - 1

let rec compare a b =
  match a, b with
  | [], [] -> 0
  | [], _ :: _ -> -1 (* prefix (ancestor) sorts first: document order *)
  | _ :: _, [] -> 1
  | x :: a', y :: b' -> if x <> y then Stdlib.compare x y else compare a' b'

let rec is_ancestor ~ancestor l =
  match ancestor, l with
  | [], [] -> false
  | [], _ :: _ -> true
  | _ :: _, [] -> false
  | x :: a', y :: b' -> x = y && is_ancestor ~ancestor:a' b'

(* A fresh label strictly inside an open interval of the label space.
   [lo]/[hi] are suffix bounds; [None] is the open end. Chooses odd final
   components so sibling levels are preserved (even components are ORDPATH
   carets). *)
let rec gen lo hi =
  match lo, hi with
  | None, None -> [ 1 ]
  | Some [], _ | _, Some [] -> invalid_arg "Ordpath: empty bound"
  | Some (l0 :: _), None -> [ (if l0 land 1 = 1 then l0 + 2 else l0 + 1) ]
  | None, Some (h0 :: _) -> [ (if h0 land 1 = 1 then h0 - 2 else h0 - 1) ]
  | Some (l0 :: lt), Some (h0 :: ht) ->
    if l0 = h0 then
      l0
      :: gen
           (match lt with [] -> None | _ -> Some lt)
           (match ht with
           | [] -> invalid_arg "Ordpath.gen: bounds not ordered"
           | _ -> Some ht)
    else if h0 - l0 >= 2 then begin
      (* an integer strictly between exists: odd -> done, even -> caret + 1 *)
      let c = if l0 land 1 = 1 && h0 - l0 > 2 then l0 + 2 else l0 + 1 in
      if c land 1 = 1 then [ c ] else [ c; 1 ]
    end
    else if ht <> [] then h0 :: gen None (Some ht) (* descend on the right *)
    else if lt <> [] then l0 :: gen (Some lt) None (* descend on the left *)
    else l0 :: gen None None

let check_order a b =
  if compare a b >= 0 then
    invalid_arg
      (Printf.sprintf "Ordpath.between: bounds not ordered (%s >= %s)"
         (String.concat "." (List.map string_of_int a))
         (String.concat "." (List.map string_of_int b)))

let between a b =
  check_order a b;
  gen (Some a) (Some b)

(* Sibling labels just outside an existing one: replace the final odd
   component (levels are preserved; ORDPATH grows the value, not the
   length, for edge inserts). *)
let replace_last l f =
  match List.rev l with
  | [] -> invalid_arg "Ordpath: empty label"
  | c :: rest -> List.rev (f c :: rest)

let insert_before l = replace_last l (fun c -> c - 2)

let insert_after l = replace_last l (fun c -> c + 2)

let label_tree d =
  let acc = ref [] in
  let rec go label lvl (n : Xml.Dom.node) =
    acc := (label, lvl) :: !acc;
    match n with
    | Xml.Dom.Element e ->
      List.iteri (fun i c -> go (child label (i + 1)) (lvl + 1) c) e.children
    | Xml.Dom.Text _ | Xml.Dom.Comment _ | Xml.Dom.Pi _ -> ()
  in
  go root 0 (Xml.Dom.Element d.Xml.Dom.root);
  List.rev !acc

let bit_length l =
  List.fold_left
    (fun acc c ->
      let mag = abs c in
      let rec bits n = if n = 0 then 1 else 1 + bits (n / 2) in
      acc + 7 + bits mag)
    0 l

let to_string l = String.concat "." (List.map string_of_int l)

let pp ppf l = Format.pp_print_string ppf (to_string l)
