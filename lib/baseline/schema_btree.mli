(** The "SQL host" variant the paper sketches in §4:

    "Using a pos/size/level table, where pos is e.g. a SQL 2003 generated
    column, will work fine in any RDBMS, and the computation of pre from pos
    using a pageOffset table is perfectly expressible in SQL. Just like
    original staircase join, a RDBMS will not be able to use positional
    lookup, but can still be accelerated with B-tree indices."

    This schema stores the same logical content as {!Core.Schema_up} but
    plays by RDBMS rules: tuples are rows keyed by a {e materialised} [pos],
    every row access goes through a B-tree (an AVL map here) instead of an
    array subscript, and the pre→pos swizzle is a join against a pageOffset
    {e table} (another B-tree) rather than array arithmetic.  Queries run
    through the same engine functor; the [rdbms] bench quantifies the paper's
    claim that positional (void-column) access is "the prime reason for the
    performance advantage of MonetDB/XQuery over other XQuery systems". *)

type t

val of_dom : ?page_bits:int -> ?fill:float -> Xml.Dom.t -> t

include Core.Storage_intf.S with type t := t

val lookups : t -> int
(** Number of B-tree descents performed so far (diagnostics for the bench). *)
