module Imap = Map.Make (Int)
module Up = Core.Schema_up

type row = { rsize : int; rlevel : int; rkind : int; rname : int }

type t = {
  page_bits : int;
  slots : int;
  live : int;
  root : int;
  mutable rows : row Imap.t; (* keyed by materialised pos *)
  mutable log_to_phys : int Imap.t; (* the pageOffset *table* *)
  mutable node_of_pos : int Imap.t;
  mutable pos_of_node : int Imap.t;
  mutable attrs : (Xml.Qname.t * string) list Imap.t; (* by node id *)
  qn_ids : (string, int) Hashtbl.t;
  qn_names : (int, string) Hashtbl.t;
  texts : string Imap.t ref; (* by (kind, ref) — see [text_key] *)
  pi_targets : string Imap.t ref;
  mutable nlookups : int;
}

(* one string table keyed by kind*2^40 + ref, standing in for the text/com/
   ins side tables *)
let text_key kind r = (kind lsl 40) lor r

let of_dom ?page_bits ?fill d =
  (* Build the reference layout with the real shredder, then spill it into
     B-trees so both schemas hold byte-identical logical content. *)
  let up = Up.of_dom ?page_bits ?fill d in
  let t =
    { page_bits = Up.page_bits up;
      slots = Up.capacity up;
      live = Up.node_count up;
      root = Up.root_pre up;
      rows = Imap.empty;
      log_to_phys = Imap.empty;
      node_of_pos = Imap.empty;
      pos_of_node = Imap.empty;
      attrs = Imap.empty;
      qn_ids = Hashtbl.create 64;
      qn_names = Hashtbl.create 64;
      texts = ref Imap.empty;
      pi_targets = ref Imap.empty;
      nlookups = 0 }
  in
  let map = Up.pagemap up in
  for logical = 0 to Up.npages up - 1 do
    t.log_to_phys <-
      Imap.add logical (Column.Pagemap.phys_of_logical map logical) t.log_to_phys
  done;
  for pos = 0 to Up.capacity up - 1 do
    let level = Up.get_cell up Up.Clevel pos in
    let size = Up.get_cell up Up.Csize pos in
    let kind = Up.get_cell up Up.Ckind pos in
    let name = Up.get_cell up Up.Cname pos in
    t.rows <- Imap.add pos { rsize = size; rlevel = level; rkind = kind; rname = name } t.rows;
    if level <> Column.Varray.null then begin
      let node = Up.get_cell up Up.Cnode pos in
      t.node_of_pos <- Imap.add pos node t.node_of_pos;
      t.pos_of_node <- Imap.add node pos t.pos_of_node;
      let pre = Up.pre_of_pos up pos in
      (match Core.Kind.of_int kind with
      | Core.Kind.Element ->
        let qs = Xml.Qname.to_string (Up.qname up pre) in
        if not (Hashtbl.mem t.qn_ids qs) then begin
          Hashtbl.add t.qn_ids qs name;
          Hashtbl.add t.qn_names name qs
        end;
        let attrs = Up.attributes up pre in
        if attrs <> [] then begin
          t.attrs <- Imap.add node attrs t.attrs;
          List.iter
            (fun (q, _) ->
              let qs = Xml.Qname.to_string q in
              match Up.qn_id up q with
              | Some id when not (Hashtbl.mem t.qn_ids qs) ->
                Hashtbl.add t.qn_ids qs id;
                Hashtbl.add t.qn_names id qs
              | Some _ | None -> ())
            attrs
        end
      | Core.Kind.Text | Core.Kind.Comment ->
        t.texts := Imap.add (text_key kind name) (Up.content up pre) !(t.texts)
      | Core.Kind.Pi ->
        t.texts := Imap.add (text_key kind name) (Up.content up pre) !(t.texts);
        t.pi_targets := Imap.add name (Up.pi_target up pre) !(t.pi_targets))
    end
  done;
  t

let lookups t = t.nlookups

(* every data access is a B-tree descent, O(log N) *)
let find t m k =
  t.nlookups <- t.nlookups + 1;
  Imap.find k m

let pos_of_pre t pre =
  let mask = (1 lsl t.page_bits) - 1 in
  let phys = find t t.log_to_phys (pre lsr t.page_bits) in
  (phys lsl t.page_bits) lor (pre land mask)

let row t pre = find t t.rows (pos_of_pre t pre)

let extent t = t.slots

let node_count t = t.live

let is_used t pre = (row t pre).rlevel <> Column.Varray.null

let next_used t pre =
  let stop = t.slots in
  let pre = ref pre in
  while
    !pre < stop
    &&
    let r = row t !pre in
    if r.rlevel = Column.Varray.null then begin
      pre := !pre + r.rsize + 1;
      true
    end
    else false
  do
    ()
  done;
  min !pre stop

let prev_used t pre =
  let mask = (1 lsl t.page_bits) - 1 in
  let pre = ref (min pre (t.slots - 1)) in
  let continue = ref true in
  while !pre >= 0 && !continue do
    let r = row t !pre in
    if r.rlevel <> Column.Varray.null then continue := false
    else begin
      let page_first = !pre land lnot mask in
      let first = row t page_first in
      if first.rlevel = Column.Varray.null && page_first + first.rsize >= !pre then
        pre := page_first - 1
      else decr pre
    end
  done;
  if !pre < 0 then -1 else !pre

let size t pre = (row t pre).rsize

let level t pre = (row t pre).rlevel

let kind t pre = Core.Kind.of_int (row t pre).rkind

let name_id t pre = (row t pre).rname

let qname t pre =
  match kind t pre with
  | Core.Kind.Element -> Xml.Qname.of_string (Hashtbl.find t.qn_names (name_id t pre))
  | _ -> invalid_arg "Schema_btree.qname: not an element"

let content t pre =
  let r = row t pre in
  match Core.Kind.of_int r.rkind with
  | Core.Kind.Element -> invalid_arg "Schema_btree.content: element node"
  | _ -> find t !(t.texts) (text_key r.rkind r.rname)

let pi_target t pre =
  match kind t pre with
  | Core.Kind.Pi -> find t !(t.pi_targets) (name_id t pre)
  | _ -> invalid_arg "Schema_btree.pi_target: not a PI"

let qn_id t q = Hashtbl.find_opt t.qn_ids (Xml.Qname.to_string q)

let node_at t pre = find t t.node_of_pos (pos_of_pre t pre)

let attributes t pre =
  match Imap.find_opt (node_at t pre) t.attrs with
  | Some l ->
    t.nlookups <- t.nlookups + 1;
    l
  | None -> []

let attribute t pre q =
  List.find_map
    (fun (q', v) -> if Xml.Qname.equal q q' then Some v else None)
    (attributes t pre)

let root_pre t = t.root
