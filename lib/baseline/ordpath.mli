(** ORDPATH-style variable-length node labels ([OOP+04], the related work the
    paper compares against in §4.2).

    Labels are Dewey-like component vectors; odd components carve out levels,
    even components are {e carets} that extend a label without adding a level,
    which is what makes inserts possible without relabelling. The paper's
    critique, which the ordpath bench quantifies: comparisons cost O(label
    length) instead of one integer comparison, positional skipping is
    impossible, and labels {e degenerate} (grow without bound) under repeated
    inserts at the same point. *)

type t

val root : t
(** The root label, [\[1\]]. *)

val child : t -> int -> t
(** [child l k] is the label of the k-th (1-based) initially-loaded child:
    component [2k - 1] appended. *)

val label_tree : Xml.Dom.t -> (t * int) list
(** Initial load: document-order list of (label, level). *)

val compare : t -> t -> int
(** Document order. O(min length). *)

val is_ancestor : ancestor:t -> t -> bool

val level : t -> int
(** Number of odd components minus one (carets don't count). *)

val between : t -> t -> t
(** A fresh label strictly between two sibling-region labels (the insert
    primitive). Raises [Invalid_argument] if [compare a b >= 0]. *)

val insert_before : t -> t
(** A fresh sibling label ordered just before the given one. *)

val insert_after : t -> t

val components : t -> int list

val length : t -> int
(** Component count — the degeneration measure. *)

val bit_length : t -> int
(** Approximate encoded size in bits (compressed Dewey: ~[7 + log2 |c|] bits
    per component, as a stand-in for ORDPATH's Li/Oi prefix code). *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
