(** Wire protocol of the network query server: length-prefixed text frames
    carrying one request or one response each.

    {b Framing.} A frame is a decimal payload length in ASCII, a single
    ['\n'], then exactly that many payload bytes:

    {v
    <len>\n<payload bytes>
    v}

    The length covers the payload only. Both directions use the same
    framing, so a client can always skip a response it does not understand.
    The length header is bounded ({!max_header_digits} digits) and the
    payload is bounded by the receiver's [max_bytes] — a peer announcing a
    larger frame is rejected {e before} any payload is read.

    {b Requests.} The payload's first line is the verb and its inline
    argument; everything after the first ['\n'] is the body (only [UPDATE]
    uses it — the XUpdate document travels there because it is itself
    multi-line XML):

    {v
    PING | QUERY <xpath> | COUNT <xpath> | EXPLAIN <xpath>
    PROFILE <xpath> | UPDATE (body = XUpdate)
    DOC <name> | LS | CREATE <name> (body = XML) | DROP <name>
    METRICS | CACHE | QUIT
    v}

    [DOC] scopes the connection: subsequent query/update verbs address the
    named document until the next [DOC]. A connection that never sends
    [DOC] addresses the server's default document — the pre-catalog
    behaviour, so old clients keep working unchanged.

    {b Responses.} First line ["OK"] or ["ERR <code>"]; the rest is the
    result payload (serialized items, a count, Prometheus text, …) or the
    error message. See PROTOCOL.md for the full frame/verb specification
    and the per-verb payloads. *)

type request =
  | Ping
  | Query of string
  | Count of string
  | Explain of string
  | Profile of string
  | Update of string  (** body: one XUpdate modifications document *)
  | Doc of string  (** scope this connection to the named document *)
  | Ls  (** list the catalog's document names, one per line *)
  | Create of { name : string; body : string }
      (** shred [body] (an XML document) as a new named document *)
  | Drop of string  (** remove a document from the catalog *)
  | Metrics  (** Prometheus text exposition of the whole registry *)
  | Cache_stats
  | Quit

type response =
  | Ok of string
  | Err of { code : string; msg : string }
      (** [code] is one short token (["parse"], ["timeout"], ["busy"],
          ["proto"], ["too-large"], ["catalog"], ["shutdown"], …); [msg] is
          free text. *)

val verb_name : request -> string
(** The wire verb (["QUERY"], ["PING"], …) — also the [verb] label of the
    server's per-request instruments. *)

val render_request : request -> string

val parse_request : string -> (request, string) result
(** Parse a request payload. [Error] carries a human-readable reason (the
    connection stays usable: framing was intact, only the verb was bad). *)

val render_response : response -> string

val parse_response : string -> (response, string) result

(** {1 Frame transport}

    Blocking reads/writes on a connected socket, resilient to partial
    reads/writes and EINTR. *)

val max_header_digits : int
(** Longest accepted length header (without the ['\n']). *)

type read_error =
  | Eof  (** clean EOF on a frame boundary (peer closed or half-closed) *)
  | Closed_mid_frame  (** EOF after a partial header or payload *)
  | Too_large of { len : int; cap : int }
      (** announced length [len] exceeds the receiver's bound [cap]; no
          payload bytes were consumed, but the stream is no longer
          synchronized *)
  | Malformed of string
      (** non-numeric or oversized length header; the message carries the
          offending header text and the violated bound *)

val read_error_text : read_error -> string

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame; raises [Unix.Unix_error] on a dead or (with
    [SO_SNDTIMEO] armed) persistently unwritable peer. *)

val read_frame : max_bytes:int -> Unix.file_descr -> (string, read_error) result
(** Read one frame. After [Too_large] or [Malformed] the caller must close
    the connection: frame boundaries are lost. *)

(** {1 Client conveniences} *)

val request : Unix.file_descr -> request -> (response, read_error) result
(** Send one request and read one response frame (client side; responses are
    bounded by {!client_max_response_bytes}). *)

val client_max_response_bytes : int
