(* Length-prefixed text frames; see protocol.mli and PROTOCOL.md. *)

type request =
  | Ping
  | Query of string
  | Count of string
  | Explain of string
  | Profile of string
  | Update of string
  | Doc of string
  | Ls
  | Create of { name : string; body : string }
  | Drop of string
  | Metrics
  | Cache_stats
  | Quit

type response = Ok of string | Err of { code : string; msg : string }

let verb_name = function
  | Ping -> "PING"
  | Query _ -> "QUERY"
  | Count _ -> "COUNT"
  | Explain _ -> "EXPLAIN"
  | Profile _ -> "PROFILE"
  | Update _ -> "UPDATE"
  | Doc _ -> "DOC"
  | Ls -> "LS"
  | Create _ -> "CREATE"
  | Drop _ -> "DROP"
  | Metrics -> "METRICS"
  | Cache_stats -> "CACHE"
  | Quit -> "QUIT"

let render_request = function
  | Ping -> "PING"
  | Query x -> "QUERY " ^ x
  | Count x -> "COUNT " ^ x
  | Explain x -> "EXPLAIN " ^ x
  | Profile x -> "PROFILE " ^ x
  | Update body -> "UPDATE\n" ^ body
  | Doc name -> "DOC " ^ name
  | Ls -> "LS"
  | Create { name; body } -> "CREATE " ^ name ^ "\n" ^ body
  | Drop name -> "DROP " ^ name
  | Metrics -> "METRICS"
  | Cache_stats -> "CACHE"
  | Quit -> "QUIT"

(* First line (verb + inline argument) vs body. A payload without '\n' is
   all first-line. *)
let split_payload s =
  match String.index_opt s '\n' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let split_verb line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line (i + 1) (String.length line - i - 1)) )

let parse_request payload =
  let line, body = split_payload payload in
  let verb, arg = split_verb (String.trim line) in
  let need_arg mk =
    if arg = "" then Error (verb ^ " needs an inline argument") else Result.Ok (mk arg)
  in
  match String.uppercase_ascii verb with
  | "PING" -> Result.Ok Ping
  | "QUERY" -> need_arg (fun a -> Query a)
  | "COUNT" -> need_arg (fun a -> Count a)
  | "EXPLAIN" -> need_arg (fun a -> Explain a)
  | "PROFILE" -> need_arg (fun a -> Profile a)
  | "UPDATE" ->
    if String.trim body = "" then Error "UPDATE needs an XUpdate body"
    else Result.Ok (Update body)
  | "DOC" -> need_arg (fun a -> Doc a)
  | "LS" -> Result.Ok Ls
  | "CREATE" ->
    if arg = "" then Error "CREATE needs a document name"
    else if String.trim body = "" then Error "CREATE needs an XML body"
    else Result.Ok (Create { name = arg; body })
  | "DROP" -> need_arg (fun a -> Drop a)
  | "METRICS" -> Result.Ok Metrics
  | "CACHE" -> Result.Ok Cache_stats
  | "QUIT" -> Result.Ok Quit
  | "" -> Error "empty request"
  | v -> Error ("unknown verb: " ^ v)

let render_response = function
  | Ok "" -> "OK"
  | Ok body -> "OK\n" ^ body
  | Err { code; msg } -> Printf.sprintf "ERR %s\n%s" code msg

let parse_response payload =
  let line, body = split_payload payload in
  match split_verb (String.trim line) with
  | "OK", "" -> Result.Ok (Ok body)
  | "ERR", code when code <> "" -> Result.Ok (Err { code; msg = body })
  | _ -> Error ("bad response status line: " ^ line)

(* ------------------------------------------------------------- transport -- *)

(* 64 MiB needs 8 digits; anything longer is a desynchronized or hostile
   stream, not a plausible frame. *)
let max_header_digits = 10

type read_error =
  | Eof
  | Closed_mid_frame
  | Too_large of { len : int; cap : int }
  | Malformed of string

let read_error_text = function
  | Eof -> "connection closed"
  | Closed_mid_frame -> "connection closed mid-frame"
  | Too_large { len; cap } ->
    Printf.sprintf "declared frame length %d exceeds the %d-byte limit" len cap
  | Malformed msg -> "malformed frame header: " ^ msg

let rec retry_intr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> retry_intr f

let write_all fd buf =
  let n = Bytes.length buf in
  let off = ref 0 in
  while !off < n do
    let w = retry_intr (fun () -> Unix.write fd buf !off (n - !off)) in
    if w = 0 then raise (Unix.Unix_error (Unix.EPIPE, "write", ""));
    off := !off + w
  done

let write_frame fd payload =
  (* One write: the header is tiny and coalescing avoids a
     delayed-ACK/Nagle stall between header and payload. *)
  let header = string_of_int (String.length payload) ^ "\n" in
  write_all fd (Bytes.of_string (header ^ payload))

(* Read exactly [n] bytes; [`Eof got] on premature close. A connection
   reset counts as EOF: a peer that aborts (or closes with data still
   unread, which makes its kernel send RST) is a gone peer, not a caller
   bug worth an exception. *)
let read_exact fd n =
  let buf = Bytes.create n in
  let off = ref 0 in
  let eof = ref false in
  while (not !eof) && !off < n do
    let r =
      try retry_intr (fun () -> Unix.read fd buf !off (n - !off))
      with Unix.Unix_error (Unix.ECONNRESET, _, _) -> 0
    in
    if r = 0 then eof := true else off := !off + r
  done;
  if !eof then `Eof !off else `Bytes buf

let read_frame ~max_bytes fd =
  (* Header: byte-at-a-time up to '\n'. Frames carry kilobytes of payload
     after a <=10 byte header, so the extra reads are noise. *)
  let digits = Buffer.create 8 in
  let rec header () =
    match read_exact fd 1 with
    | `Eof _ -> if Buffer.length digits = 0 then Error Eof else Error Closed_mid_frame
    | `Bytes b -> (
      match Bytes.get b 0 with
      | '\n' ->
        if Buffer.length digits = 0 then Error (Malformed "empty length")
        else Result.Ok (Buffer.contents digits)
      | '0' .. '9' when Buffer.length digits < max_header_digits ->
        Buffer.add_char digits (Bytes.get b 0);
        header ()
      | '0' .. '9' ->
        Error
          (Malformed
             (Printf.sprintf "length header %s… exceeds %d digits"
                (Buffer.contents digits) max_header_digits))
      | c -> Error (Malformed (Printf.sprintf "unexpected byte %C in length" c)))
  in
  match header () with
  | Error _ as e -> e
  | Result.Ok ds -> (
    match int_of_string_opt ds with
    | None ->
      Error
        (Malformed
           (Printf.sprintf "unparseable length %s (cap %d bytes)" ds max_bytes))
    | Some len when len > max_bytes -> Error (Too_large { len; cap = max_bytes })
    | Some len -> (
      if len = 0 then Result.Ok ""
      else
        match read_exact fd len with
        | `Eof _ -> Error Closed_mid_frame
        | `Bytes b -> Result.Ok (Bytes.to_string b)))

(* ---------------------------------------------------------------- client -- *)

let client_max_response_bytes = 256 * 1024 * 1024

let request fd req =
  write_frame fd (render_request req);
  match read_frame ~max_bytes:client_max_response_bytes fd with
  | Error _ as e -> e
  | Result.Ok payload -> (
    match parse_response payload with
    | Result.Ok r -> Result.Ok r
    | Error msg -> Result.Ok (Err { code = "proto"; msg }))
