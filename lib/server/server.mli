(** Concurrent TCP front-end over {!Core.Db}: one thread per connection,
    length-prefixed {!Protocol} frames, snapshot-isolated reads, serialized
    writes.

    {b Connection lifecycle.} The accept loop admits a connection when the
    live count is below [max_connections] (beyond that the connection is
    {e shed}: it receives one [ERR busy] frame and is closed — the listen
    backlog never silently queues work the server will not do). Each admitted
    connection is served by a dedicated thread that reads one request frame
    at a time. Every read request runs in its own {!Core.Db.read_txn} — a
    snapshot pinned for exactly one request, so long-lived connections never
    hold back the vacuum or observe stale epochs — optionally evaluated on a
    shared {!Core.Par} pool and through the store's epoch-keyed result
    cache. [UPDATE] frames go through {!Core.Db.update}, which serializes
    them on the store's shared commit lane.

    {b Document scoping.} The store is a catalog of named documents; each
    connection carries a current document, initially
    {!Core.Db.default_doc}, so doc-unaware clients see the pre-catalog
    behaviour unchanged. [DOC <name>] re-scopes the connection (validated
    eagerly — an unknown name earns [ERR catalog] and leaves the scope
    alone); [LS] lists the catalog; [CREATE <name>] shreds the frame body
    as a new document; [DROP <name>] removes one (the default document is
    protected). Each verb has its own [server.requests{verb=...}]
    counter.

    {b Robustness.} Malformed or oversized frames earn an [ERR] response
    (when the stream still permits one) and a connection close — never a
    process exit; [SIGPIPE] is ignored process-wide on [start]. A request
    running longer than [request_timeout_s] is answered [ERR timeout] by a
    watchdog thread and its connection is shut down; the worker thread
    discards its late result. Clients that stop draining their socket hit
    the [write_deadline_s] send timeout and are dropped. On {!stop} (or
    SIGTERM/SIGINT under {!run}) the server {e drains}: the listener closes,
    idle connections are shut down, in-flight requests get up to
    [drain_grace_s] to finish and flush their responses, then — after the
    last writer is done — the store is checkpointed (see DESIGN.md for the
    ordering argument) and control returns.

    {b Observability.} [server.*] instruments: [connections] (live gauge),
    [accepted]/[shed]/[requests{verb=...}]/[errors{code=...}]/
    [frames_rejected]/[timeouts]/[slow_client_drops] counters,
    [bytes_in]/[bytes_out], and the [request_time] histogram. The [METRICS]
    verb renders the whole registry as Prometheus text over the wire.
    Queries flow through the ordinary {!Core.Db} session path, so the
    slow-query log ({!Core.Profile.Slowlog}), span traces and engine
    metrics all see server traffic unchanged. *)

module Protocol = Protocol
(** Re-exported wire protocol (this module is the library root, so
    [Protocol] is only reachable through it). *)

type config = {
  host : string;  (** bind address, default ["127.0.0.1"] *)
  port : int;  (** 0 picks an ephemeral port (read it back with {!port}) *)
  max_connections : int;  (** live-connection cap; excess is shed *)
  max_frame_bytes : int;  (** request frames above this are rejected *)
  request_timeout_s : float;  (** per-request wall budget; 0 = unlimited *)
  write_deadline_s : float;
      (** [SO_SNDTIMEO] on every connection: a peer that stops reading for
          this long is dropped; 0 = never *)
  drain_grace_s : float;  (** max wait for in-flight requests on drain *)
  checkpoint_to : string option;
      (** checkpoint target: written once on [start] (so a crash while
          serving recovers from checkpoint + WAL) and again — with the WAL
          truncated — at the end of a graceful drain *)
}

val default_config : config
(** [{ host = "127.0.0.1"; port = 0; max_connections = 64;
      max_frame_bytes = 4 MiB; request_timeout_s = 30.; write_deadline_s
      = 10.; drain_grace_s = 5.; checkpoint_to = None }] *)

type t

val start : ?config:config -> ?par:Core.Par.t -> Core.Db.t -> t
(** Bind, write the initial checkpoint (if configured), and spawn the
    accept loop plus the timeout watchdog. Returns immediately; the server
    accepts until {!stop}. [par]: evaluate read requests on this shared
    domain pool. Raises [Unix.Unix_error] when the address cannot be
    bound. *)

val port : t -> int
(** The bound port (after [port = 0] resolution). *)

val stop : t -> unit
(** Initiate drain; returns immediately. Idempotent. *)

val wait : t -> unit
(** Block until the drain (including the final checkpoint) has completed.
    [stop] + [wait] from the serving thread of {!run} is the programmatic
    equivalent of SIGTERM. *)

val run : ?config:config -> ?par:Core.Par.t -> Core.Db.t -> unit
(** [start], install SIGTERM/SIGINT handlers that trigger the drain, and
    block until it completes — the body of [xqdb serve]. *)

(** {1 Testing hooks} *)

val failpoint_site : string
(** Name of the {!Fault} site evaluated once per request, after the frame
    is parsed and before it executes (["server.request"]) — arm it with
    [Delay] to make requests slow (timeout tests) or [Crash] to kill the
    process mid-serve (crash-recovery tests). *)
