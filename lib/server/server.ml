(* Thread-per-connection TCP server over Core.Db; see server.mli for the
   lifecycle and robustness contract. *)

module Protocol = Protocol
module Db = Core.Db
module Ser = Core.Node_serialize.Make (Core.View)

let failpoint_site = "server.request"

(* ------------------------------------------------------------ instruments -- *)

let m_connections =
  Obs.gauge ~help:"live client connections" "server.connections"

let m_accepted = Obs.counter ~help:"connections admitted" "server.accepted"

let m_shed =
  Obs.counter ~help:"connections shed at the max-connection cap" "server.shed"

let m_frames_rejected =
  Obs.counter ~help:"malformed/oversized/truncated request frames"
    "server.frames_rejected"

let m_timeouts =
  Obs.counter ~help:"requests cut off by the per-request timeout"
    "server.timeouts"

let m_slow_drops =
  Obs.counter ~help:"connections dropped on the send deadline (slow client)"
    "server.slow_client_drops"

let m_bytes_in = Obs.counter ~help:"request payload bytes" "server.bytes_in"

let m_bytes_out = Obs.counter ~help:"response payload bytes" "server.bytes_out"

let m_request_time =
  Obs.histogram ~help:"request wall time [s]" "server.request_time"

let m_drains = Obs.counter ~help:"graceful drains completed" "server.drains"

(* per-verb/per-code counter families, registered idempotently *)
let m_requests verb =
  Obs.counter ~help:"requests by verb" ~labels:[ ("verb", verb) ]
    "server.requests"

let m_errors code =
  Obs.counter ~help:"error responses by code" ~labels:[ ("code", code) ]
    "server.errors"

(* ---------------------------------------------------------------- config -- *)

type config = {
  host : string;
  port : int;
  max_connections : int;
  max_frame_bytes : int;
  request_timeout_s : float;
  write_deadline_s : float;
  drain_grace_s : float;
  checkpoint_to : string option;
}

let default_config =
  { host = "127.0.0.1";
    port = 0;
    max_connections = 64;
    max_frame_bytes = 4 * 1024 * 1024;
    request_timeout_s = 30.0;
    write_deadline_s = 10.0;
    drain_grace_s = 5.0;
    checkpoint_to = None }

(* ----------------------------------------------------------- connections -- *)

(* [wmu] guards the response side of one connection: [deadline]/[timed_out]
   (watchdog vs worker race) and [closed] (exactly-once close). The read
   side is only ever touched by the worker thread. *)
type conn = {
  id : int;
  fd : Unix.file_descr;
  wmu : Mutex.t;
  mutable deadline : float option; (* monotonic; Some while a request runs *)
  mutable timed_out : bool;
  mutable closed : bool;
  mutable doc : string;
      (* DOC scope of this connection; only the worker thread touches it.
         Starts at the default document, so doc-unaware clients behave
         exactly as before the catalog existed. *)
}

type t = {
  cfg : config;
  db : Db.t;
  par : Core.Par.t option;
  lfd : Unix.file_descr;
  bound_port : int;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t; (* drain complete *)
  conns : (int, conn) Hashtbl.t;
  cmu : Mutex.t;
  mutable accept_thr : Thread.t option;
  mutable watchdog_thr : Thread.t option;
}

let port t = t.bound_port

let locked mu f =
  Mutex.lock mu;
  Fun.protect ~finally:(fun () -> Mutex.unlock mu) f

(* Close exactly once, under [wmu]; safe from worker, watchdog and drain. *)
let close_conn c =
  locked c.wmu (fun () ->
      if not c.closed then begin
        c.closed <- true;
        (try Unix.close c.fd with Unix.Unix_error _ -> ())
      end)

let unregister t c =
  let removed =
    locked t.cmu (fun () ->
        if Hashtbl.mem t.conns c.id then begin
          Hashtbl.remove t.conns c.id;
          true
        end
        else false)
  in
  if removed then Obs.gauge_add m_connections (-1.0);
  close_conn c

(* Best-effort response write honouring the timeout watchdog: after the
   watchdog answered for us, the late result is discarded. Returns false
   when the connection is no longer usable. *)
let send_response c payload =
  locked c.wmu (fun () ->
      c.deadline <- None;
      if c.timed_out || c.closed then false
      else
        match Protocol.write_frame c.fd payload with
        | () ->
          Obs.add m_bytes_out (String.length payload);
          true
        | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_SNDTIMEO expired: the peer stopped draining its socket *)
          Obs.inc m_slow_drops;
          false
        | exception Unix.Unix_error _ -> false)

(* After answering on a desynchronized stream (oversized/malformed frame)
   the connection must close — but closing with unread bytes in the receive
   buffer makes the kernel send RST, which can destroy the error frame
   before the peer reads it. So: half-close the send side and drain
   whatever the peer already wrote until its FIN arrives, bounded by a 1s
   receive timeout. *)
let linger_close c =
  (try Unix.shutdown c.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ());
  (try Unix.setsockopt_float c.fd Unix.SO_RCVTIMEO 1.0
   with Unix.Unix_error _ -> ());
  let buf = Bytes.create 4096 in
  try
    while Unix.read c.fd buf 0 4096 > 0 do
      ()
    done
  with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------- execution -- *)

let err_code : Db.Error.t -> string = function
  | Db.Error.Parse _ -> "parse"
  | Db.Error.Aborted _ -> "aborted"
  | Db.Error.Apply _ -> "apply"
  | Db.Error.Corrupt _ -> "corrupt"
  | Db.Error.Io _ -> "io"
  | Db.Error.Catalog _ -> "catalog"

let err e = Protocol.Err { code = err_code e; msg = Db.Error.to_string e }

(* Body of a QUERY response: result count, then one serialized item per
   line-group (subtrees are themselves multi-line only when indented — they
   are not — so one line each; attributes render as name="value"). *)
let render_items v items =
  let b = Buffer.create 256 in
  Buffer.add_string b (string_of_int (List.length items));
  List.iter
    (fun item ->
      Buffer.add_char b '\n';
      match item with
      | Db.E.Node pre -> Buffer.add_string b (Ser.subtree_to_string v pre)
      | Db.E.Attribute { qn; value; _ } ->
        Buffer.add_string b
          (Printf.sprintf "%s=\"%s\"" (Xml.Qname.to_string qn) value))
    items;
  Buffer.contents b

let cache_stats_text db =
  match Db.cache_stats db with
  | None -> "cache: disabled"
  | Some st ->
    Printf.sprintf
      "entries %d/%d\nbytes %d/%d\nhits %d\nmisses %d\nplan_hits %d\n\
       plan_misses %d\nevictions %d\nsingleflight_waits %d"
      st.Core.Qcache.entries st.Core.Qcache.max_entries st.Core.Qcache.bytes
      st.Core.Qcache.max_bytes st.Core.Qcache.hits st.Core.Qcache.misses
      st.Core.Qcache.plan_hits st.Core.Qcache.plan_misses
      st.Core.Qcache.evictions st.Core.Qcache.singleflight_waits

(* One read request = one pinned snapshot of the connection's current
   document; [f] folds the session's own result into the response body. *)
let in_read t ~doc f =
  match Db.read_txn ?par:t.par ~doc t.db f with
  | Ok (Ok body) -> Protocol.Ok body
  | Ok (Error e) | Error e -> err e

let exec t c (req : Protocol.request) : Protocol.response =
  let doc = c.doc in
  match req with
  | Protocol.Ping -> Protocol.Ok "pong"
  | Protocol.Quit -> Protocol.Ok "bye"
  | Protocol.Metrics -> Protocol.Ok (Obs.render_prometheus (Obs.snapshot ()))
  | Protocol.Cache_stats -> Protocol.Ok (cache_stats_text t.db)
  | Protocol.Query x ->
    in_read t ~doc (fun s ->
        Result.map
          (fun items -> render_items (Db.Session.view s) items)
          (Db.Session.query s x))
  | Protocol.Count x ->
    in_read t ~doc (fun s -> Result.map string_of_int (Db.Session.count s x))
  | Protocol.Explain x -> (
    match Db.query_profiled ?par:t.par ~doc t.db x with
    | Ok (_, p) -> Protocol.Ok (Core.Profile.render_explain ~timings:false p)
    | Error e -> err e)
  | Protocol.Profile x -> (
    match Db.query_profiled ?par:t.par ~doc t.db x with
    | Ok (_, p) -> Protocol.Ok (Core.Profile.render_explain p)
    | Error e -> err e)
  | Protocol.Update body -> (
    match Db.update ~doc t.db body with
    | Ok n -> Protocol.Ok (string_of_int n)
    | Error e -> err e)
  | Protocol.Doc name ->
    (* Validate eagerly so a typo fails here, not on the next QUERY; the
       scope sticks until the next DOC (even if the document is later
       dropped — queries then fail with the same catalog error). *)
    if List.mem name (Db.list_docs t.db) then begin
      c.doc <- name;
      Protocol.Ok name
    end
    else err (Db.Error.Catalog ("no such document: " ^ name))
  | Protocol.Ls -> Protocol.Ok (String.concat "\n" (Db.list_docs t.db))
  | Protocol.Create { name; body } -> (
    match Db.create_doc_xml t.db name body with
    | Ok () -> Protocol.Ok name
    | Error e -> err e)
  | Protocol.Drop name ->
    if name = Db.default_doc then
      err (Db.Error.Catalog "cannot drop the default document")
    else (
      match Db.drop_doc t.db name with
      | Ok () -> Protocol.Ok name
      | Error e -> err e)

(* ------------------------------------------------------------ connection -- *)

let respond c (resp : Protocol.response) =
  (match resp with
  | Protocol.Err { code; _ } -> Obs.inc (m_errors code)
  | Protocol.Ok _ -> ());
  send_response c (Protocol.render_response resp)

let handle_frame t c payload =
  Obs.add m_bytes_in (String.length payload);
  match Protocol.parse_request payload with
  | Error msg ->
    (* bad verb, intact framing: answer and keep the connection *)
    Obs.inc m_frames_rejected;
    if respond c (Protocol.Err { code = "proto"; msg }) then `Continue
    else `Close
  | Ok req ->
    Obs.inc (m_requests (Protocol.verb_name req));
    locked c.wmu (fun () ->
        c.timed_out <- false;
        c.deadline <-
          (if t.cfg.request_timeout_s > 0.0 then
             Some (Obs.monotonic () +. t.cfg.request_timeout_s)
           else None));
    Fault.hit failpoint_site;
    let t0 = Obs.monotonic () in
    let resp = exec t c req in
    Obs.observe m_request_time (Obs.monotonic () -. t0);
    let sent = respond c resp in
    match req with
    | Protocol.Quit -> `Close
    | _ -> if sent then `Continue else `Close

let serve_conn t c =
  let rec loop () =
    if Atomic.get t.stopping then ()
    else
      match Protocol.read_frame ~max_bytes:t.cfg.max_frame_bytes c.fd with
      | Ok payload -> ( match handle_frame t c payload with
        | `Continue -> loop ()
        | `Close -> ())
      | Error Protocol.Eof -> ()
      | Error Protocol.Closed_mid_frame ->
        (* half-closed or died mid-upload: nothing to answer *)
        Obs.inc m_frames_rejected
      | Error (Protocol.Too_large _ as e) ->
        Obs.inc m_frames_rejected;
        ignore
          (respond c
             (Protocol.Err
                { code = "too-large"; msg = Protocol.read_error_text e }));
        (* stream is desynchronized: close (gently — the peer still has an
           error frame to read) *)
        linger_close c
      | Error (Protocol.Malformed msg) ->
        Obs.inc m_frames_rejected;
        ignore (respond c (Protocol.Err { code = "proto"; msg }));
        linger_close c
  in
  (* A connection thread must never take the process down: protocol and
     socket trouble is handled above; anything else is logged to the error
     counter and the connection dropped. *)
  (try loop ()
   with e ->
     Obs.inc (m_errors "internal");
     ignore
       (respond c
          (Protocol.Err { code = "internal"; msg = Printexc.to_string e })));
  unregister t c

(* -------------------------------------------------------------- watchdog -- *)

(* Scan live connections for matured request deadlines. OCaml threads cannot
   be cancelled, so the watchdog answers the client ([ERR timeout]) and
   shuts the socket down; the worker keeps evaluating, discovers
   [timed_out] when it tries to respond, and discards its result. *)
let watchdog t =
  while not (Atomic.get t.stopped) do
    Thread.delay 0.05;
    let now = Obs.monotonic () in
    let overdue =
      locked t.cmu (fun () ->
          Hashtbl.fold
            (fun _ c acc ->
              match c.deadline with
              | Some d when now > d && not c.timed_out -> c :: acc
              | _ -> acc)
            t.conns [])
    in
    List.iter
      (fun c ->
        let fired =
          locked c.wmu (fun () ->
              match c.deadline with
              | Some d when now > d && (not c.timed_out) && not c.closed ->
                c.timed_out <- true;
                c.deadline <- None;
                (try
                   Protocol.write_frame c.fd
                     (Protocol.render_response
                        (Protocol.Err
                           { code = "timeout"; msg = "request deadline exceeded" }))
                 with Unix.Unix_error _ -> ());
                (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL
                 with Unix.Unix_error _ -> ());
                true
              | _ -> false)
        in
        if fired then begin
          Obs.inc m_timeouts;
          Obs.inc (m_errors "timeout")
        end)
      overdue
  done

(* ----------------------------------------------------------------- drain -- *)

let live_conns t = locked t.cmu (fun () -> Hashtbl.fold (fun _ c acc -> c :: acc) t.conns [])

(* Graceful drain: the listener is already closed (accept loop exited).
   Wake idle readers by shutting the receive side — workers mid-request
   keep their write side and flush their response — then wait out the
   grace period, hard-close stragglers, and checkpoint the final state. *)
let drain t =
  List.iter
    (fun c ->
      try Unix.shutdown c.fd Unix.SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ())
    (live_conns t);
  let waited = ref 0.0 in
  while live_conns t <> [] && !waited < t.cfg.drain_grace_s do
    Thread.delay 0.02;
    waited := !waited +. 0.02
  done;
  (match live_conns t with
  | [] -> ()
  | stragglers ->
    List.iter
      (fun c ->
        (try Unix.shutdown c.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
        ignore c)
      stragglers;
    let extra = ref 0.0 in
    while live_conns t <> [] && !extra < 1.0 do
      Thread.delay 0.02;
      extra := !extra +. 0.02
    done);
  (* Every writer that was answered has committed by now (responses are sent
     after Db.update returns), so the checkpoint is a superset of every
     acknowledged state and truncating the WAL loses nothing — see the
     ordering argument in DESIGN.md. *)
  Option.iter
    (fun path -> Db.checkpoint ~truncate_wal:true t.db path)
    t.cfg.checkpoint_to;
  Obs.inc m_drains;
  Atomic.set t.stopped true

(* ---------------------------------------------------------------- accept -- *)

let shed fd =
  Obs.inc m_shed;
  (try
     Protocol.write_frame fd
       (Protocol.render_response
          (Protocol.Err { code = "busy"; msg = "connection limit reached" }))
   with Unix.Unix_error _ -> ());
  try Unix.close fd with Unix.Unix_error _ -> ()

let conn_ids = Atomic.make 0

let accept_loop t =
  while not (Atomic.get t.stopping) do
    (* poll so stop/SIGTERM is noticed within 200ms even with no traffic *)
    match Unix.select [ t.lfd ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
      match Unix.accept t.lfd with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error _ -> ()
      | fd, _peer ->
        if Atomic.get t.stopping then shed fd
        else begin
          (try Unix.setsockopt fd Unix.TCP_NODELAY true
           with Unix.Unix_error _ -> ());
          if t.cfg.write_deadline_s > 0.0 then
            (try Unix.setsockopt_float fd Unix.SO_SNDTIMEO t.cfg.write_deadline_s
             with Unix.Unix_error _ -> ());
          let admitted =
            locked t.cmu (fun () ->
                if Hashtbl.length t.conns >= t.cfg.max_connections then None
                else begin
                  let c =
                    { id = Atomic.fetch_and_add conn_ids 1;
                      fd;
                      wmu = Mutex.create ();
                      deadline = None;
                      timed_out = false;
                      closed = false;
                      doc = Db.default_doc }
                  in
                  Hashtbl.replace t.conns c.id c;
                  Some c
                end)
          in
          match admitted with
          | None -> shed fd
          | Some c ->
            Obs.inc m_accepted;
            Obs.gauge_add m_connections 1.0;
            ignore (Thread.create (fun () -> serve_conn t c) ())
        end)
  done;
  (try Unix.close t.lfd with Unix.Unix_error _ -> ());
  drain t

(* ------------------------------------------------------------- lifecycle -- *)

let start ?(config = default_config) ?par db =
  (* a dying client must surface as EPIPE on our write, not kill the process *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  Option.iter (fun path -> Db.checkpoint db path) config.checkpoint_to;
  let lfd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt lfd Unix.SO_REUSEADDR true;
     Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen lfd 64
   with e ->
     (try Unix.close lfd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname lfd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let t =
    { cfg = config;
      db;
      par;
      lfd;
      bound_port;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      conns = Hashtbl.create 32;
      cmu = Mutex.create ();
      accept_thr = None;
      watchdog_thr = None }
  in
  t.accept_thr <- Some (Thread.create (fun () -> accept_loop t) ());
  t.watchdog_thr <- Some (Thread.create (fun () -> watchdog t) ());
  t

let stop t = Atomic.set t.stopping true

let wait t =
  Option.iter Thread.join t.accept_thr;
  Option.iter Thread.join t.watchdog_thr

let run ?config ?par db =
  let t = start ?config ?par db in
  let on_signal _ = stop t in
  let saved_term = Sys.signal Sys.sigterm (Sys.Signal_handle on_signal) in
  let saved_int = Sys.signal Sys.sigint (Sys.Signal_handle on_signal) in
  Fun.protect
    ~finally:(fun () ->
      Sys.set_signal Sys.sigterm saved_term;
      Sys.set_signal Sys.sigint saved_int)
    (fun () -> wait t)
